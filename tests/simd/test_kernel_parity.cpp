// Differential parity harness for the SIMD kernel layer: every kernel in
// src/simd/kernel_list.def is fuzzed with seeded random inputs and its
// output at each available dispatch level compared BIT FOR BIT against the
// scalar reference. The registry below (PARITY_KERNEL entries) is the
// acceptance gate for new kernels — tests/CMakeLists.txt refuses to
// configure if a kernel_list.def row has no entry here, and
// RegistryCoversEveryKernel re-checks the same invariant at runtime.
//
// Case generation deliberately covers the classic vectorization traps:
// sizes hitting every width-mod-lanes remainder, stride != width streams
// for box_blur_h, uint8 saturation extremes (0/255-heavy buffers), exact
// .5 rounding ties and their float neighbours for quantize_u8, and
// negative zero in masked-out lanes.

#include "simd/simd.hpp"
#include "util/contract.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <vector>

namespace {

using inframe::simd::Kernels;
using inframe::simd::Level;

constexpr int cases_per_kernel = 500;

using Parity_fn = void (*)(const Kernels& ref, const Kernels& tst, std::mt19937& rng);

std::map<std::string, Parity_fn>& registry()
{
    static std::map<std::string, Parity_fn> r;
    return r;
}

bool register_parity(const char* name, Parity_fn fn)
{
    registry().emplace(name, fn);
    return true;
}

// PARITY_KERNEL(name) { body } — defines one differential case generator
// and registers it under the kernel's kernel_list.def name. The configure
// guard in tests/CMakeLists.txt greps for these entries literally.
#define PARITY_KERNEL(name)                                                                  \
    void parity_case_##name(const Kernels& ref, const Kernels& tst, std::mt19937& rng);      \
    const bool parity_registered_##name = register_parity(#name, parity_case_##name);        \
    void parity_case_##name(const Kernels& ref, const Kernels& tst, std::mt19937& rng)

// --- input generation -------------------------------------------------------

int random_size(std::mt19937& rng)
{
    switch (rng() % 4u) {
    case 0: return 1 + static_cast<int>(rng() % 16u); // every small remainder
    case 1: {
        const int lanes = 1 << (rng() % 6u); // exact multiples of 1..32
        return lanes * (1 + static_cast<int>(rng() % 8u));
    }
    case 2: return 1 + static_cast<int>(rng() % 300u);
    default: return 513 + static_cast<int>(rng() % 64u);
    }
}

float random_float(std::mt19937& rng)
{
    switch (rng() % 8u) {
    case 0: return 0.0f;
    case 1: return -0.0f;
    case 2: // exact rounding tie in the 8-bit domain
        return static_cast<float>(rng() % 256u) + 0.5f;
    case 3: // one ulp above/below a tie
        return std::nextafterf(static_cast<float>(rng() % 256u) + 0.5f,
                               (rng() % 2u) ? 1000.0f : -1000.0f);
    default:
        return std::uniform_real_distribution<float>(-320.0f, 320.0f)(rng);
    }
}

std::vector<float> random_floats(std::mt19937& rng, int n)
{
    std::vector<float> v(static_cast<std::size_t>(n));
    for (auto& x : v) x = random_float(rng);
    return v;
}

std::vector<double> random_doubles(std::mt19937& rng, int n)
{
    std::vector<double> v(static_cast<std::size_t>(n));
    std::uniform_real_distribution<double> dist(-1.0e6, 1.0e6);
    for (auto& x : v) x = dist(rng);
    return v;
}

std::vector<std::uint8_t> random_bytes(std::mt19937& rng, int n)
{
    std::vector<std::uint8_t> v(static_cast<std::size_t>(n));
    for (auto& x : v) {
        // Bias toward the saturation extremes: a quarter of all bytes are
        // exactly 0 or 255 so adds/subtracts clip constantly.
        const auto roll = rng() % 4u;
        x = roll == 0 ? static_cast<std::uint8_t>((rng() % 2u) ? 255 : 0)
                      : static_cast<std::uint8_t>(rng() % 256u);
    }
    return v;
}

// --- bitwise comparison -----------------------------------------------------

template <typename T>
void expect_bitwise_equal(const std::vector<T>& want, const std::vector<T>& got,
                          const char* what)
{
    ASSERT_EQ(want.size(), got.size()) << what;
    if (std::memcmp(want.data(), got.data(), want.size() * sizeof(T)) == 0) return;
    for (std::size_t i = 0; i < want.size(); ++i) {
        if (std::memcmp(&want[i], &got[i], sizeof(T)) != 0) {
            FAIL() << what << ": first divergence at element " << i << ": scalar="
                   << +want[i] << " vector=" << +got[i] << " (n=" << want.size() << ")";
        }
    }
}

void expect_bits_equal(double want, double got, const char* what)
{
    std::uint64_t wb = 0;
    std::uint64_t gb = 0;
    std::memcpy(&wb, &want, sizeof wb);
    std::memcpy(&gb, &got, sizeof gb);
    EXPECT_EQ(wb, gb) << what << ": scalar=" << want << " vector=" << got;
}

// --- per-kernel case generators --------------------------------------------

void binary_f32_case(void (*rfn)(const float*, const float*, float*, int),
                     void (*tfn)(const float*, const float*, float*, int), std::mt19937& rng,
                     const char* what)
{
    const int n = random_size(rng);
    const auto a = random_floats(rng, n);
    const auto b = random_floats(rng, n);
    std::vector<float> want(static_cast<std::size_t>(n));
    std::vector<float> got(static_cast<std::size_t>(n));
    rfn(a.data(), b.data(), want.data(), n);
    tfn(a.data(), b.data(), got.data(), n);
    expect_bitwise_equal(want, got, what);
}

PARITY_KERNEL(add_f32) { binary_f32_case(ref.add_f32, tst.add_f32, rng, "add_f32"); }
PARITY_KERNEL(sub_f32) { binary_f32_case(ref.sub_f32, tst.sub_f32, rng, "sub_f32"); }
PARITY_KERNEL(absdiff_f32)
{
    binary_f32_case(ref.absdiff_f32, tst.absdiff_f32, rng, "absdiff_f32");
}

PARITY_KERNEL(clamp_f32)
{
    const int n = random_size(rng);
    auto lo = std::uniform_real_distribution<float>(-300.0f, 100.0f)(rng);
    auto hi = lo + std::uniform_real_distribution<float>(0.0f, 400.0f)(rng);
    auto want = random_floats(rng, n);
    auto got = want;
    ref.clamp_f32(want.data(), n, lo, hi);
    tst.clamp_f32(got.data(), n, lo, hi);
    expect_bitwise_equal(want, got, "clamp_f32");
}

PARITY_KERNEL(masked_add_f32)
{
    const int n = random_size(rng);
    const float delta = random_float(rng);
    std::vector<std::uint32_t> mask(static_cast<std::size_t>(n));
    for (auto& m : mask) m = (rng() % 2u) ? ~std::uint32_t{0} : 0u;
    auto want = random_floats(rng, n); // contains -0.0f lanes: they must survive untouched
    auto got = want;
    ref.masked_add_f32(want.data(), mask.data(), n, delta);
    tst.masked_add_f32(got.data(), mask.data(), n, delta);
    expect_bitwise_equal(want, got, "masked_add_f32");
}

PARITY_KERNEL(quantize_u8)
{
    const int n = random_size(rng);
    const auto in = random_floats(rng, n); // ties, near-ties, out-of-range values
    std::vector<std::uint8_t> want(static_cast<std::size_t>(n));
    std::vector<std::uint8_t> got(static_cast<std::size_t>(n));
    ref.quantize_u8(in.data(), want.data(), n);
    tst.quantize_u8(in.data(), got.data(), n);
    expect_bitwise_equal(want, got, "quantize_u8");
}

PARITY_KERNEL(widen_u8)
{
    const int n = random_size(rng);
    const auto in = random_bytes(rng, n);
    std::vector<float> want(static_cast<std::size_t>(n));
    std::vector<float> got(static_cast<std::size_t>(n));
    ref.widen_u8(in.data(), want.data(), n);
    tst.widen_u8(in.data(), got.data(), n);
    expect_bitwise_equal(want, got, "widen_u8");
}

void binary_u8_case(void (*rfn)(const std::uint8_t*, const std::uint8_t*, std::uint8_t*, int),
                    void (*tfn)(const std::uint8_t*, const std::uint8_t*, std::uint8_t*, int),
                    std::mt19937& rng, const char* what)
{
    const int n = random_size(rng);
    const auto a = random_bytes(rng, n);
    const auto b = random_bytes(rng, n);
    std::vector<std::uint8_t> want(static_cast<std::size_t>(n));
    std::vector<std::uint8_t> got(static_cast<std::size_t>(n));
    rfn(a.data(), b.data(), want.data(), n);
    tfn(a.data(), b.data(), got.data(), n);
    expect_bitwise_equal(want, got, what);
}

PARITY_KERNEL(add_sat_u8) { binary_u8_case(ref.add_sat_u8, tst.add_sat_u8, rng, "add_sat_u8"); }
PARITY_KERNEL(sub_sat_u8) { binary_u8_case(ref.sub_sat_u8, tst.sub_sat_u8, rng, "sub_sat_u8"); }
PARITY_KERNEL(absdiff_u8) { binary_u8_case(ref.absdiff_u8, tst.absdiff_u8, rng, "absdiff_u8"); }

PARITY_KERNEL(residual_energy_u8)
{
    const int n = random_size(rng);
    const auto a = random_bytes(rng, n);
    const auto b = random_bytes(rng, n);
    EXPECT_EQ(ref.residual_energy_u8(a.data(), b.data(), n),
              tst.residual_energy_u8(a.data(), b.data(), n))
        << "residual_energy_u8 (n=" << n << ")";
}

PARITY_KERNEL(row_sum_f64)
{
    const int n = random_size(rng);
    const auto p = random_floats(rng, n);
    expect_bits_equal(ref.row_sum_f64(p.data(), n), tst.row_sum_f64(p.data(), n),
                      "row_sum_f64");
}

PARITY_KERNEL(vblur_accum)
{
    const int n = random_size(rng);
    const auto row = random_floats(rng, n);
    auto want = random_doubles(rng, n);
    auto got = want;
    ref.vblur_accum(want.data(), row.data(), n);
    tst.vblur_accum(got.data(), row.data(), n);
    expect_bitwise_equal(want, got, "vblur_accum");
}

PARITY_KERNEL(vblur_update)
{
    const int n = random_size(rng);
    const auto enter = random_floats(rng, n);
    const auto leave = random_floats(rng, n);
    auto want = random_doubles(rng, n);
    auto got = want;
    ref.vblur_update(want.data(), enter.data(), leave.data(), n);
    tst.vblur_update(got.data(), enter.data(), leave.data(), n);
    expect_bitwise_equal(want, got, "vblur_update");
}

PARITY_KERNEL(vblur_store)
{
    const int n = random_size(rng);
    const float norm = 1.0f / static_cast<float>(1 + rng() % 31u);
    const auto acc = random_doubles(rng, n);
    std::vector<float> want(static_cast<std::size_t>(n));
    std::vector<float> got(static_cast<std::size_t>(n));
    ref.vblur_store(acc.data(), want.data(), n, norm);
    tst.vblur_store(acc.data(), got.data(), n, norm);
    expect_bitwise_equal(want, got, "vblur_store");
}

PARITY_KERNEL(box_blur_h)
{
    // 1..12 streams exercises both full vector groups and remainder lanes;
    // stride > 1 models channel-interleaved rows (stride != width always).
    const int lanes = 1 + static_cast<int>(rng() % 12u);
    const int width = 1 + static_cast<int>(rng() % 64u);
    const int stride = 1 + static_cast<int>(rng() % 4u);
    const int radius = static_cast<int>(rng() % 11u);
    const int values = (width - 1) * stride + 1;

    std::vector<std::vector<float>> src(static_cast<std::size_t>(lanes));
    std::vector<std::vector<float>> want(static_cast<std::size_t>(lanes));
    std::vector<std::vector<float>> got(static_cast<std::size_t>(lanes));
    std::vector<const float*> src_ptr(static_cast<std::size_t>(lanes));
    std::vector<float*> want_ptr(static_cast<std::size_t>(lanes));
    std::vector<float*> got_ptr(static_cast<std::size_t>(lanes));
    for (int lane = 0; lane < lanes; ++lane) {
        const auto s = static_cast<std::size_t>(lane);
        src[s] = random_floats(rng, values);
        want[s].assign(static_cast<std::size_t>(values), 0.0f);
        got[s].assign(static_cast<std::size_t>(values), 0.0f);
        src_ptr[s] = src[s].data();
        want_ptr[s] = want[s].data();
        got_ptr[s] = got[s].data();
    }
    ref.box_blur_h(src_ptr.data(), want_ptr.data(), lanes, width, stride, radius);
    tst.box_blur_h(src_ptr.data(), got_ptr.data(), lanes, width, stride, radius);
    for (int lane = 0; lane < lanes; ++lane) {
        const auto s = static_cast<std::size_t>(lane);
        expect_bitwise_equal(want[s], got[s], "box_blur_h");
    }
}

PARITY_KERNEL(bilinear_row)
{
    const int n = random_size(rng);
    const int src_w = 1 + static_cast<int>(rng() % 128u);
    const auto row0 = random_floats(rng, src_w);
    const auto row1 = random_floats(rng, src_w);
    std::vector<std::int32_t> idx0(static_cast<std::size_t>(n));
    std::vector<std::int32_t> idx1(static_cast<std::size_t>(n));
    std::vector<float> tx(static_cast<std::size_t>(n));
    std::uniform_real_distribution<float> frac(0.0f, 1.0f);
    for (int i = 0; i < n; ++i) {
        const auto s = static_cast<std::size_t>(i);
        idx0[s] = static_cast<std::int32_t>(rng() % static_cast<unsigned>(src_w));
        idx1[s] = std::min(idx0[s] + 1, src_w - 1);
        tx[s] = frac(rng);
    }
    const float ty = frac(rng);
    std::vector<float> want(static_cast<std::size_t>(n));
    std::vector<float> got(static_cast<std::size_t>(n));
    ref.bilinear_row(row0.data(), row1.data(), idx0.data(), idx1.data(), tx.data(), ty,
                     want.data(), n);
    tst.bilinear_row(row0.data(), row1.data(), idx0.data(), idx1.data(), tx.data(), ty,
                     got.data(), n);
    expect_bitwise_equal(want, got, "bilinear_row");
}

// --- the differential fuzzer ------------------------------------------------

class KernelParity : public ::testing::TestWithParam<Level> {};

TEST_P(KernelParity, VectorMatchesScalarBitForBit)
{
    const Level level = GetParam();
    const Kernels& ref = inframe::simd::kernels_for(Level::scalar);
    const Kernels& tst = inframe::simd::kernels_for(level);
    for (const auto& [name, fn] : registry()) {
        SCOPED_TRACE(std::string("kernel=") + name + " level="
                     + inframe::simd::to_string(level));
        // One fixed seed per (kernel, level): failures replay exactly.
        std::mt19937 rng(0xC0DEC0DEu ^ (std::hash<std::string>{}(name) & 0xFFFFFFu)
                         ^ (static_cast<unsigned>(level) << 24));
        for (int i = 0; i < cases_per_kernel; ++i) {
            fn(ref, tst, rng);
            if (::testing::Test::HasFatalFailure()) return;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllLevels, KernelParity,
                         ::testing::ValuesIn(inframe::simd::available_levels().begin(),
                                             inframe::simd::available_levels().end()),
                         [](const ::testing::TestParamInfo<Level>& info) {
                             return std::string(inframe::simd::to_string(info.param));
                         });

// --- registry / dispatch invariants ----------------------------------------

TEST(KernelParityRegistry, RegistryCoversEveryKernel)
{
    static const char* const kernel_names[] = {
#define INFRAME_SIMD_KERNEL(name, ret, args) #name,
#include "simd/kernel_list.def"
#undef INFRAME_SIMD_KERNEL
    };
    for (const char* name : kernel_names) {
        EXPECT_TRUE(registry().count(name) == 1)
            << "kernel " << name << " has no PARITY_KERNEL entry";
    }
    EXPECT_EQ(registry().size(), std::size(kernel_names))
        << "parity registry has entries for kernels not in kernel_list.def";
}

TEST(KernelParityRegistry, EveryTableSlotIsPopulated)
{
    for (const Level level : inframe::simd::available_levels()) {
        const Kernels& k = inframe::simd::kernels_for(level);
#define INFRAME_SIMD_KERNEL(name, ret, args)                                                 \
    EXPECT_NE(k.name, nullptr) << #name << " missing at level "                              \
                               << inframe::simd::to_string(level);
#include "simd/kernel_list.def"
#undef INFRAME_SIMD_KERNEL
    }
}

TEST(SimdDispatch, LevelsAreCoherent)
{
    const auto levels = inframe::simd::available_levels();
    ASSERT_FALSE(levels.empty());
    EXPECT_EQ(levels.front(), Level::scalar);
    bool best_listed = false;
    for (const Level level : levels) best_listed |= (level == inframe::simd::best_supported());
    EXPECT_TRUE(best_listed);
}

TEST(SimdDispatch, SetActiveLevelRoundTrips)
{
    const Level before = inframe::simd::active_level();
    const Level prev = inframe::simd::set_active_level(Level::scalar);
    EXPECT_EQ(prev, before);
    EXPECT_EQ(inframe::simd::active_level(), Level::scalar);
    EXPECT_EQ(&inframe::simd::kernels(), &inframe::simd::kernels_for(Level::scalar));
    inframe::simd::set_active_level(before);
    EXPECT_EQ(inframe::simd::active_level(), before);
}

TEST(SimdDispatch, LevelNamesParse)
{
    EXPECT_EQ(inframe::simd::level_from_name("scalar"), Level::scalar);
    EXPECT_EQ(inframe::simd::level_from_name("SSE2"), Level::sse2);
    EXPECT_EQ(inframe::simd::level_from_name("Avx2"), Level::avx2);
    EXPECT_EQ(inframe::simd::level_from_name("neon"), Level::neon);
    EXPECT_THROW(inframe::simd::level_from_name("avx512"),
                 inframe::util::Contract_violation);
    for (const Level level : {Level::scalar, Level::sse2, Level::avx2, Level::neon}) {
        EXPECT_EQ(inframe::simd::level_from_name(inframe::simd::to_string(level)), level);
    }
}

} // namespace
