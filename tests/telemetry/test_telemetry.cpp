// Telemetry subsystem: the JSON reader it exports through, the registry
// (interning, per-thread shards, merge-at-snapshot), span recording, the
// Session scope rules, and the two contracts the instrumentation must
// keep: decoded payload bits are identical with telemetry on or off at
// any execution configuration, and a traced run exports artifacts that
// parse and reference only instrumented span names.

#include "core/link_runner.hpp"
#include "telemetry/json.hpp"
#include "telemetry/telemetry.hpp"
#include "video/source.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace inframe;
namespace json = telemetry::json;

// --- JSON reader --------------------------------------------------------

TEST(TelemetryJson, ParsesScalarsAndContainers)
{
    json::Value value;
    ASSERT_TRUE(json::parse(R"({"a": 1.5, "b": [true, null, "x"], "c": {"d": -2e3}})", value));
    ASSERT_TRUE(value.is_object());
    EXPECT_DOUBLE_EQ(value["a"].as_number(), 1.5);
    ASSERT_TRUE(value["b"].is_array());
    ASSERT_EQ(value["b"].as_array().size(), 3u);
    EXPECT_TRUE(value["b"].as_array()[0].as_bool());
    EXPECT_TRUE(value["b"].as_array()[1].is_null());
    EXPECT_EQ(value["b"].as_array()[2].as_string(), "x");
    EXPECT_DOUBLE_EQ(value["c"]["d"].as_number(), -2000.0);
}

TEST(TelemetryJson, ParsesStringEscapes)
{
    json::Value value;
    ASSERT_TRUE(json::parse(R"(["a\"b", "tab\tnewline\n", "Aé"])", value));
    const auto& array = value.as_array();
    EXPECT_EQ(array[0].as_string(), "a\"b");
    EXPECT_EQ(array[1].as_string(), "tab\tnewline\n");
    EXPECT_EQ(array[2].as_string(), "A\xc3\xa9");
}

TEST(TelemetryJson, RejectsMalformedInput)
{
    json::Value value;
    std::string error;
    EXPECT_FALSE(json::parse("{\"a\": }", value, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(json::parse("[1, 2] trailing", value, &error));
    EXPECT_FALSE(json::parse("", value, &error));
    EXPECT_FALSE(json::parse("{\"a\" 1}", value, &error));
}

TEST(TelemetryJson, MissingKeysAndFallbacks)
{
    json::Value value;
    ASSERT_TRUE(json::parse(R"({"n": 3, "s": "hi"})", value));
    EXPECT_DOUBLE_EQ(value.number_or("n", -1.0), 3.0);
    EXPECT_DOUBLE_EQ(value.number_or("missing", -1.0), -1.0);
    EXPECT_EQ(value.string_or("s", "no"), "hi");
    EXPECT_EQ(value.string_or("missing", "no"), "no");
    EXPECT_TRUE(value["missing"].is_null());
    EXPECT_TRUE(value["missing"]["deeper"].is_null());
}

TEST(TelemetryJson, ParseLinesSkipsBlanksAndReportsBadLine)
{
    std::vector<json::Value> lines;
    ASSERT_TRUE(json::parse_lines("{\"a\":1}\n\n{\"a\":2}\n", lines));
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_DOUBLE_EQ(lines[1].number_or("a", 0.0), 2.0);

    std::string error;
    lines.clear();
    EXPECT_FALSE(json::parse_lines("{\"a\":1}\nnot json\n", lines, &error));
    EXPECT_NE(error.find("2"), std::string::npos) << error;
}

// --- histograms ---------------------------------------------------------

TEST(TelemetryHistogram, BucketsAreMonotonicAndClamped)
{
    using telemetry::Histogram_data;
    EXPECT_EQ(Histogram_data::bucket_of(0.0), 0);
    EXPECT_EQ(Histogram_data::bucket_of(-5.0), 0);
    int previous = 0;
    for (double v = 1e-4; v < 1e3; v *= 1.7) {
        const int bucket = Histogram_data::bucket_of(v);
        EXPECT_GE(bucket, previous) << v;
        EXPECT_LT(bucket, Histogram_data::bucket_count) << v;
        previous = bucket;
    }
    EXPECT_EQ(Histogram_data::bucket_of(1e30), Histogram_data::bucket_count - 1);
    // The lower bound of a value's bucket never exceeds the value.
    for (double v : {0.01, 0.5, 1.0, 3.7, 100.0}) {
        const int bucket = Histogram_data::bucket_of(v);
        EXPECT_LE(Histogram_data::bucket_lower_bound(bucket), v) << v;
    }
}

TEST(TelemetryHistogram, RecordAndMergeTrackMoments)
{
    telemetry::Histogram_data a, b;
    a.record(1.0);
    a.record(4.0);
    b.record(0.25);
    a.merge(b);
    EXPECT_EQ(a.count, 3u);
    EXPECT_DOUBLE_EQ(a.sum, 5.25);
    EXPECT_DOUBLE_EQ(a.min, 0.25);
    EXPECT_DOUBLE_EQ(a.max, 4.0);
}

TEST(TelemetryFrameRecord, MarginBucketsClampAndOrder)
{
    using telemetry::Frame_record;
    EXPECT_EQ(Frame_record::margin_bucket(0.0), 0);
    EXPECT_EQ(Frame_record::margin_bucket(1e9), Frame_record::margin_buckets - 1);
    EXPECT_LE(Frame_record::margin_bucket(0.01), Frame_record::margin_bucket(0.5));
    EXPECT_LE(Frame_record::margin_bucket(0.5), Frame_record::margin_bucket(8.0));
}

// --- registry -----------------------------------------------------------

TEST(TelemetryRegistry, InternIsIdempotent)
{
    const int a = telemetry::intern_metric("test.intern", telemetry::Metric_kind::counter);
    const int b = telemetry::intern_metric("test.intern", telemetry::Metric_kind::counter);
    EXPECT_EQ(a, b);
    const auto names = telemetry::metric_names();
    ASSERT_GT(names.size(), static_cast<std::size_t>(a));
    EXPECT_EQ(names[static_cast<std::size_t>(a)].name, "test.intern");
}

TEST(TelemetryRegistry, HooksAreInertWithoutRegistry)
{
    ASSERT_EQ(telemetry::current(), nullptr);
    const int counter = telemetry::intern_metric("test.inert", telemetry::Metric_kind::counter);
    telemetry::counter_add(counter, 7);
    telemetry::gauge_set(counter, 1.0);
    telemetry::histogram_record(counter, 1.0);
    { telemetry::Scoped_span span("test.inert.span"); }
    telemetry::emit_frame(telemetry::Frame_record{});
    telemetry::emit_event({"test", "inert", 0, 0.0});
    // Nothing to observe — the assertions are that none of the above
    // crashed and telemetry stayed disabled throughout.
    EXPECT_FALSE(telemetry::enabled());
}

TEST(TelemetryRegistry, CountersMergeAcrossThreads)
{
    const int counter =
        telemetry::intern_metric("test.multithread", telemetry::Metric_kind::counter);
    telemetry::Registry registry;
    telemetry::install(&registry);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([counter] {
            for (int i = 0; i < 1000; ++i) telemetry::counter_add(counter);
        });
    }
    for (auto& thread : threads) thread.join();
    telemetry::install(nullptr);

    const auto snapshot = registry.snapshot();
    bool found = false;
    for (const auto& value : snapshot.counters) {
        if (value.name == "test.multithread") {
            EXPECT_EQ(value.value, 4000u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(TelemetryRegistry, SpansFramesAndEventsAreCaptured)
{
    telemetry::Registry registry;
    telemetry::install(&registry);
    { telemetry::Scoped_span span("test.span"); }
    telemetry::Frame_record frame;
    frame.data_frame_index = 3;
    frame.blocks_total = 10;
    telemetry::emit_frame(frame);
    telemetry::emit_event({"test", "ping", 5, 2.5});
    telemetry::install(nullptr);

    const auto snapshot = registry.snapshot();
    EXPECT_GE(snapshot.span_count, 1u);
    EXPECT_EQ(snapshot.frame_count, 1u);
    EXPECT_EQ(snapshot.event_count, 1u);

    std::ostringstream jsonl;
    registry.write_frames_jsonl(jsonl);
    std::vector<json::Value> lines;
    ASSERT_TRUE(json::parse_lines(jsonl.str(), lines));
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].string_or("type", ""), "frame");
    EXPECT_DOUBLE_EQ(lines[0].number_or("data_frame_index", -1.0), 3.0);
    EXPECT_EQ(lines[1].string_or("type", ""), "event");
    EXPECT_EQ(lines[1].string_or("name", ""), "ping");
}

TEST(TelemetryRegistry, StaleSpanAcrossReinstallIsDropped)
{
    // A span that outlives the registry it started under must not record
    // into (or crash on) whatever is installed when it ends.
    auto first = std::make_unique<telemetry::Registry>();
    telemetry::install(first.get());
    auto span = std::make_unique<telemetry::Scoped_span>("test.stale");
    telemetry::install(nullptr);
    first.reset();

    telemetry::Registry second;
    telemetry::install(&second);
    span.reset(); // ends under `second`, started under `first` — dropped
    telemetry::install(nullptr);
    EXPECT_EQ(second.snapshot().span_count, 0u);
}

// --- session ------------------------------------------------------------

TEST(TelemetrySession, DisabledConfigIsInert)
{
    telemetry::Session session(telemetry::Config{});
    EXPECT_FALSE(session.active());
    EXPECT_FALSE(telemetry::enabled());
}

TEST(TelemetrySession, OutermostSessionWins)
{
    const auto dir = std::filesystem::path(::testing::TempDir()) / "telemetry_nested";
    {
        telemetry::Session outer({(dir / "outer").string()});
        ASSERT_TRUE(outer.active());
        telemetry::Session inner({(dir / "inner").string()});
        EXPECT_FALSE(inner.active());
        EXPECT_EQ(telemetry::current(), outer.registry());
    }
    EXPECT_FALSE(telemetry::enabled());
    EXPECT_TRUE(std::filesystem::exists(dir / "outer" / "trace.json"));
    EXPECT_FALSE(std::filesystem::exists(dir / "inner"));
}

// --- end-to-end contracts -----------------------------------------------

core::Link_experiment_config traced_rig(int threads, int frames_in_flight)
{
    core::Link_experiment_config config;
    constexpr int width = 480;
    constexpr int height = 270;
    config.video = video::make_sunrise_video(width, height);
    config.inframe = core::paper_config(width, height);
    config.inframe.geometry = coding::fitted_geometry(width, height, 2);
    config.inframe.tau = 12;
    config.camera.sensor_width = width;
    config.camera.sensor_height = height;
    config.camera.shot_noise_scale = 0.25;
    config.camera.read_noise_sigma = 1.5;
    config.camera.quantize = true;
    config.detector = core::Detector::matched;
    config.duration_s = 0.3;
    config.threads = threads;
    config.frames_in_flight = frames_in_flight;
    return config;
}

void expect_identical(const core::Link_experiment_result& a,
                      const core::Link_experiment_result& b, const std::string& label)
{
    EXPECT_EQ(a.data_frames, b.data_frames) << label;
    EXPECT_EQ(a.captures, b.captures) << label;
    EXPECT_EQ(a.available_gob_ratio, b.available_gob_ratio) << label;
    EXPECT_EQ(a.gob_error_rate, b.gob_error_rate) << label;
    EXPECT_EQ(a.goodput_kbps, b.goodput_kbps) << label;
    EXPECT_EQ(a.block_error_rate, b.block_error_rate) << label;
    EXPECT_EQ(a.trusted_bit_error_rate, b.trusted_bit_error_rate) << label;
    EXPECT_EQ(a.payload_bit_error_rate, b.payload_bit_error_rate) << label;
}

TEST(TelemetryContract, PayloadBitsIdenticalWithTelemetryOnOrOff)
{
    const auto baseline = core::run_link_experiment(traced_rig(1, 1));
    ASSERT_GT(baseline.data_frames, 0);
    for (const int threads : {1, 4}) {
        for (const int fif : {1, 4}) {
            auto config = traced_rig(threads, fif);
            const auto dir = std::filesystem::path(::testing::TempDir())
                             / ("telemetry_identity_t" + std::to_string(threads) + "_f"
                                + std::to_string(fif));
            config.telemetry.trace_dir = dir.string();
            const auto traced = core::run_link_experiment(config);
            expect_identical(traced, baseline,
                             "threads=" + std::to_string(threads)
                                 + " fif=" + std::to_string(fif));
            EXPECT_TRUE(std::filesystem::exists(dir / "trace.json"));
        }
    }
}

std::string slurp(const std::filesystem::path& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(TelemetryContract, TracedRunExportsValidArtifacts)
{
    const auto dir = std::filesystem::path(::testing::TempDir()) / "telemetry_smoke";
    auto config = traced_rig(1, 4);
    config.telemetry.trace_dir = dir.string();
    const auto result = core::run_link_experiment(config);
    ASSERT_GT(result.data_frames, 0);

    // trace.json: parses, and every span name is an instrumented one.
    const std::set<std::string> allowed = {
        // pipeline stages (link + flicker drivers)
        "video", "encode", "link", "decode", "send", "receive", "produce", "assess",
        // instrumented operations
        "encode.embed", "decode.capture", "decode.finalize", "link.capture",
        "pool.batch", "sync.estimate",
        // impairment stages
        "timing", "exposure-drift", "shake", "tear", "occlusion"};
    json::Value trace;
    std::string error;
    ASSERT_TRUE(json::parse(slurp(dir / "trace.json"), trace, &error)) << error;
    const auto& events = trace["traceEvents"].as_array();
    ASSERT_FALSE(events.empty());
    std::set<std::string> seen;
    for (const auto& event : events) {
        EXPECT_EQ(event.string_or("ph", ""), "X");
        EXPECT_GE(event.number_or("dur", -1.0), 0.0);
        const std::string name = event.string_or("name", "?");
        EXPECT_TRUE(allowed.count(name)) << "unregistered span name: " << name;
        seen.insert(name);
    }
    // The core of the pipeline must actually appear.
    for (const char* expected : {"video", "encode", "link", "decode", "encode.embed",
                                 "decode.finalize", "link.capture"}) {
        EXPECT_TRUE(seen.count(expected)) << "missing span: " << expected;
    }

    // frames.jsonl: one frame record per decoded data frame, well formed.
    std::vector<json::Value> lines;
    ASSERT_TRUE(json::parse_lines(slurp(dir / "frames.jsonl"), lines, &error)) << error;
    std::int64_t frames = 0;
    for (const auto& line : lines) {
        if (line.string_or("type", "") != "frame") continue;
        ++frames;
        EXPECT_GT(line.number_or("blocks_total", 0.0), 0.0);
        EXPECT_GT(line.number_or("gobs_total", 0.0), 0.0);
        ASSERT_TRUE(line["margin_hist"].is_array());
        EXPECT_EQ(line["margin_hist"].as_array().size(),
                  static_cast<std::size_t>(telemetry::Frame_record::margin_buckets));
    }
    EXPECT_EQ(frames, result.data_frames);

    // metrics.json: parses and reports the shapes the exporter promises.
    json::Value metrics;
    ASSERT_TRUE(json::parse(slurp(dir / "metrics.json"), metrics, &error)) << error;
    ASSERT_TRUE(metrics["counters"].is_object());
    ASSERT_TRUE(metrics["histograms"].is_object());
    EXPECT_GE(metrics.number_or("span_count", 0.0), static_cast<double>(events.size()));
    EXPECT_EQ(metrics.number_or("frame_count", -1.0), static_cast<double>(frames));
}

} // namespace
