#include "util/bitstream.hpp"

#include "util/contract.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe::util;

TEST(Bitstream, SingleBitsRoundTrip)
{
    Bit_writer writer;
    const int pattern[] = {1, 0, 1, 1, 0, 0, 1, 0, 1};
    for (const int bit : pattern) writer.put_bit(bit);
    EXPECT_EQ(writer.bit_count(), 9u);

    Bit_reader reader(writer.bytes(), writer.bit_count());
    for (const int bit : pattern) EXPECT_EQ(reader.get_bit(), bit);
    EXPECT_TRUE(reader.at_end());
}

TEST(Bitstream, MsbFirstPacking)
{
    Bit_writer writer;
    writer.put_bit(1); // must land in bit 7 of byte 0
    EXPECT_EQ(writer.bytes().at(0), 0x80);
}

TEST(Bitstream, MultiBitValues)
{
    Bit_writer writer;
    writer.put_bits(0b1011'0110'1, 9);
    Bit_reader reader(writer.bytes(), writer.bit_count());
    EXPECT_EQ(reader.get_bits(9), 0b1011'0110'1u);
}

TEST(Bitstream, ByteAlignedAccess)
{
    Bit_writer writer;
    writer.put_byte(0xa5);
    writer.put_byte(0x3c);
    Bit_reader reader(writer.bytes());
    EXPECT_EQ(reader.get_byte(), 0xa5);
    EXPECT_EQ(reader.get_byte(), 0x3c);
}

TEST(Bitstream, UnalignedBytes)
{
    Bit_writer writer;
    writer.put_bit(1);
    writer.put_byte(0xff);
    writer.put_bit(0);
    Bit_reader reader(writer.bytes(), writer.bit_count());
    EXPECT_EQ(reader.get_bit(), 1);
    EXPECT_EQ(reader.get_byte(), 0xff);
    EXPECT_EQ(reader.get_bit(), 0);
}

TEST(Bitstream, ReadPastEndThrows)
{
    Bit_writer writer;
    writer.put_bit(1);
    Bit_reader reader(writer.bytes(), writer.bit_count());
    reader.get_bit();
    EXPECT_THROW(reader.get_bit(), Contract_violation);
}

TEST(Bitstream, PutBitsCountValidation)
{
    Bit_writer writer;
    EXPECT_THROW(writer.put_bits(0, 65), Contract_violation);
    EXPECT_THROW(writer.put_bits(0, -1), Contract_violation);
}

TEST(Bitstream, BitCountExceedingBufferThrows)
{
    const std::vector<std::uint8_t> bytes = {0xff};
    EXPECT_THROW(Bit_reader(bytes, 9), Contract_violation);
}

TEST(Bitstream, PackUnpackRoundTrip)
{
    Prng prng(123);
    const auto bits = prng.next_bits(777);
    const auto bytes = pack_bits(bits);
    EXPECT_EQ(bytes.size(), (777 + 7) / 8);
    const auto recovered = unpack_bits(bytes, bits.size());
    EXPECT_EQ(recovered, bits);
}

TEST(Bitstream, RandomRoundTripThroughWriterReader)
{
    Prng prng(456);
    Bit_writer writer;
    std::vector<std::pair<std::uint64_t, int>> values;
    for (int i = 0; i < 200; ++i) {
        const int count = static_cast<int>(prng.next_int(1, 64));
        const std::uint64_t value =
            count == 64 ? prng.next_u64() : prng.next_u64() & ((1ULL << count) - 1);
        writer.put_bits(value, count);
        values.emplace_back(value, count);
    }
    Bit_reader reader(writer.bytes(), writer.bit_count());
    for (const auto& [value, count] : values) EXPECT_EQ(reader.get_bits(count), value);
}

TEST(Bitstream, ToBitVectorMatchesWrites)
{
    Bit_writer writer;
    writer.put_bits(0b101, 3);
    const auto bits = writer.to_bit_vector();
    ASSERT_EQ(bits.size(), 3u);
    EXPECT_EQ(bits[0], 1);
    EXPECT_EQ(bits[1], 0);
    EXPECT_EQ(bits[2], 1);
}

TEST(Bitstream, BitsRemainingTracksPosition)
{
    Bit_writer writer;
    writer.put_bits(0xffff, 16);
    Bit_reader reader(writer.bytes(), writer.bit_count());
    EXPECT_EQ(reader.bits_remaining(), 16u);
    reader.get_bits(5);
    EXPECT_EQ(reader.bits_remaining(), 11u);
}

} // namespace
