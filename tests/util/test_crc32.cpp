#include "util/crc32.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using namespace inframe::util;

std::vector<std::uint8_t> bytes_of(const std::string& s)
{
    return {s.begin(), s.end()};
}

TEST(Crc32, KnownVectorQuickFox)
{
    // Standard CRC-32 ("123456789") check value.
    EXPECT_EQ(crc32(bytes_of("123456789")), 0xcbf43926u);
}

TEST(Crc32, EmptyInput)
{
    EXPECT_EQ(crc32({}), 0x0000'0000u);
}

TEST(Crc32, SingleByteDiffers)
{
    EXPECT_NE(crc32(bytes_of("a")), crc32(bytes_of("b")));
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    const auto data = bytes_of("InFrame dual-mode visible channel");
    Crc32 crc;
    for (const auto b : data) crc.update(b);
    EXPECT_EQ(crc.value(), crc32(data));
}

TEST(Crc32, SplitUpdateMatches)
{
    const auto data = bytes_of("complementary frames");
    Crc32 crc;
    crc.update(std::span<const std::uint8_t>(data).first(5));
    crc.update(std::span<const std::uint8_t>(data).subspan(5));
    EXPECT_EQ(crc.value(), crc32(data));
}

TEST(Crc32, ResetRestoresInitialState)
{
    Crc32 crc;
    crc.update(bytes_of("junk"));
    crc.reset();
    crc.update(bytes_of("123456789"));
    EXPECT_EQ(crc.value(), 0xcbf43926u);
}

TEST(Crc32, DetectsBitFlip)
{
    auto data = bytes_of("payload under test");
    const auto original = crc32(data);
    data[4] ^= 0x01;
    EXPECT_NE(crc32(data), original);
}

} // namespace
