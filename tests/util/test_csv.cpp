#include "util/csv.hpp"

#include "util/contract.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using namespace inframe::util;

TEST(Table, RowArityIsChecked)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({std::string("only one")}), Contract_violation);
}

TEST(Table, CsvOutput)
{
    Table t({"name", "value"});
    t.add_row({std::string("alpha"), 1.5});
    t.add_row({std::string("beta"), static_cast<long long>(7)});
    std::ostringstream out;
    t.write_csv(out);
    EXPECT_EQ(out.str(), "name,value\nalpha,1.500\nbeta,7\n");
}

TEST(Table, CsvEscapesSeparatorsAndQuotes)
{
    Table t({"text"});
    t.add_row({std::string("a,b")});
    t.add_row({std::string("say \"hi\"")});
    std::ostringstream out;
    t.write_csv(out);
    EXPECT_EQ(out.str(), "text\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
}

TEST(Table, PrintContainsHeaderAndValues)
{
    Table t({"metric", "kbps"});
    t.add_row({std::string("gray"), 12.8});
    std::ostringstream out;
    t.print(out);
    const auto text = out.str();
    EXPECT_NE(text.find("metric"), std::string::npos);
    EXPECT_NE(text.find("12.800"), std::string::npos);
}

TEST(Table, EmptyColumnListRejected)
{
    EXPECT_THROW(Table({}), Contract_violation);
}

TEST(FormatFixed, Rounds)
{
    EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
    EXPECT_EQ(format_fixed(1.235, 2), "1.24");
    EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

} // namespace
