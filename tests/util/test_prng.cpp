#include "util/prng.hpp"

#include "util/contract.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using inframe::util::Contract_violation;
using inframe::util::Prng;

TEST(Prng, SameSeedSameStream)
{
    Prng a(42);
    Prng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiverge)
{
    Prng a(1);
    Prng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
    EXPECT_LE(equal, 1);
}

TEST(Prng, ZeroSeedIsNotDegenerate)
{
    Prng a(0);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 32; ++i) seen.insert(a.next_u64());
    EXPECT_GT(seen.size(), 30u);
}

TEST(Prng, NextBelowStaysInRange)
{
    Prng a(7);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(a.next_below(17), 17u);
}

TEST(Prng, NextBelowRejectsZeroBound)
{
    Prng a(7);
    EXPECT_THROW(a.next_below(0), Contract_violation);
}

TEST(Prng, NextBelowIsRoughlyUniform)
{
    Prng a(99);
    constexpr int buckets = 8;
    constexpr int draws = 80'000;
    int counts[buckets] = {};
    for (int i = 0; i < draws; ++i) ++counts[a.next_below(buckets)];
    for (const int c : counts) {
        EXPECT_NEAR(c, draws / buckets, draws / buckets / 10);
    }
}

TEST(Prng, NextIntInclusiveBounds)
{
    Prng a(3);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = a.next_int(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Prng, NextIntRejectsInvertedRange)
{
    Prng a(3);
    EXPECT_THROW(a.next_int(3, -3), Contract_violation);
}

TEST(Prng, NextDoubleUnitInterval)
{
    Prng a(11);
    for (int i = 0; i < 1000; ++i) {
        const double v = a.next_double();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Prng, NextDoubleRangeMeanIsCentered)
{
    Prng a(12);
    double sum = 0.0;
    constexpr int n = 50'000;
    for (int i = 0; i < n; ++i) sum += a.next_double(10.0, 20.0);
    EXPECT_NEAR(sum / n, 15.0, 0.1);
}

TEST(Prng, GaussianMomentsMatch)
{
    Prng a(13);
    double sum = 0.0;
    double sum_sq = 0.0;
    constexpr int n = 100'000;
    for (int i = 0; i < n; ++i) {
        const double v = a.next_gaussian();
        sum += v;
        sum_sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Prng, GaussianScaled)
{
    Prng a(14);
    double sum = 0.0;
    constexpr int n = 50'000;
    for (int i = 0; i < n; ++i) sum += a.next_gaussian(5.0, 2.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Prng, GaussianRejectsNegativeStddev)
{
    Prng a(14);
    EXPECT_THROW(a.next_gaussian(0.0, -1.0), Contract_violation);
}

TEST(Prng, BernoulliEdgeCases)
{
    Prng a(15);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(a.next_bernoulli(0.0));
        EXPECT_TRUE(a.next_bernoulli(1.0));
    }
}

TEST(Prng, BernoulliRate)
{
    Prng a(16);
    int hits = 0;
    constexpr int n = 50'000;
    for (int i = 0; i < n; ++i) hits += a.next_bernoulli(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Prng, FillBytesCoversBuffer)
{
    Prng a(17);
    std::vector<std::uint8_t> buffer(1003, 0);
    a.fill_bytes(buffer);
    int zeros = 0;
    for (const auto b : buffer) zeros += b == 0;
    // Random bytes are zero with probability 1/256.
    EXPECT_LT(zeros, 30);
}

TEST(Prng, NextBitsAreBalanced)
{
    Prng a(18);
    const auto bits = a.next_bits(20'000);
    std::size_t ones = 0;
    for (const auto b : bits) {
        EXPECT_LE(b, 1);
        ones += b;
    }
    EXPECT_NEAR(static_cast<double>(ones) / static_cast<double>(bits.size()), 0.5, 0.02);
}

TEST(Prng, SplitStreamsAreIndependent)
{
    Prng parent(19);
    Prng child_a = parent.split();
    Prng child_b = parent.split();
    int equal = 0;
    for (int i = 0; i < 64; ++i) equal += child_a.next_u64() == child_b.next_u64();
    EXPECT_LE(equal, 1);
}

} // namespace
