#include "util/spsc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace {

using inframe::util::Spsc_queue;

TEST(SpscQueue, PreservesFifoOrder)
{
    Spsc_queue<int> queue(4);
    std::vector<int> received;
    std::thread consumer([&] {
        while (auto v = queue.pop()) received.push_back(*v);
    });
    for (int i = 0; i < 100; ++i) EXPECT_TRUE(queue.push(int(i)));
    queue.close();
    consumer.join();
    ASSERT_EQ(received.size(), 100u);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST(SpscQueue, CapacityBoundsOccupancy)
{
    // With capacity 2 and a consumer that acknowledges each item, the
    // producer can never run more than capacity + 1 items ahead of the
    // consumer (capacity queued plus one popped-but-unacknowledged).
    Spsc_queue<int> queue(2);
    std::atomic<int> consumed{0};
    std::atomic<int> produced{0};
    std::atomic<int> max_lead{0};
    std::thread consumer([&] {
        while (auto v = queue.pop()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            consumed.fetch_add(1);
        }
    });
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(queue.push(int(i)));
        const int lead = produced.fetch_add(1) + 1 - consumed.load();
        int prev = max_lead.load();
        while (lead > prev && !max_lead.compare_exchange_weak(prev, lead)) {}
    }
    queue.close();
    consumer.join();
    EXPECT_EQ(consumed.load(), 50);
    EXPECT_LE(max_lead.load(), 2 + 1);
}

TEST(SpscQueue, CloseDrainsRemainingItemsThenEnds)
{
    Spsc_queue<int> queue(8);
    EXPECT_TRUE(queue.push(1));
    EXPECT_TRUE(queue.push(2));
    queue.close();
    // Items queued before close() still come out, in order...
    auto a = queue.pop();
    auto b = queue.pop();
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, 1);
    EXPECT_EQ(*b, 2);
    // ...then the queue reports end of stream, and pushes are refused.
    EXPECT_FALSE(queue.pop().has_value());
    EXPECT_FALSE(queue.push(3));
}

TEST(SpscQueue, CloseWakesBlockedConsumer)
{
    Spsc_queue<int> queue(2);
    std::thread consumer([&] { EXPECT_FALSE(queue.pop().has_value()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.close();
    consumer.join();
}

TEST(SpscQueue, CloseWakesBlockedProducer)
{
    Spsc_queue<int> queue(1);
    ASSERT_TRUE(queue.push(0)); // fill to capacity
    std::thread producer([&] { EXPECT_FALSE(queue.push(1)); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.close();
    producer.join();
}

TEST(SpscQueue, MovesElementsThrough)
{
    Spsc_queue<std::unique_ptr<int>> queue(2);
    EXPECT_TRUE(queue.push(std::make_unique<int>(7)));
    auto out = queue.pop();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(**out, 7);
}

TEST(SpscQueue, MetricsCountWaitsAndDepth)
{
    Spsc_queue<int> queue(1);
    EXPECT_TRUE(queue.push(1));
    (void)queue.pop();
    EXPECT_TRUE(queue.push(2));
    (void)queue.pop();
    // Two pops, each observing depth 1 (the popped item itself).
    EXPECT_DOUBLE_EQ(queue.mean_depth(), 1.0);
    EXPECT_EQ(queue.full_waits(), 0);
    EXPECT_EQ(queue.empty_waits(), 0);

    // A consumer arriving before the producer records an empty-wait.
    std::thread consumer([&] { EXPECT_TRUE(queue.pop().has_value()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_TRUE(queue.push(3));
    consumer.join();
    EXPECT_GE(queue.empty_waits(), 1);
}

TEST(SpscQueue, ZeroCapacityClampsToOne)
{
    Spsc_queue<int> queue(0);
    EXPECT_TRUE(queue.push(1)); // does not deadlock: capacity clamped to 1
    auto v = queue.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 1);
}

} // namespace
