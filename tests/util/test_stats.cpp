#include "util/stats.hpp"

#include "util/contract.hpp"
#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace inframe::util;

TEST(RunningStats, EmptyIsWellDefined)
{
    Running_stats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_TRUE(std::isnan(s.min()));
    EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStats, SingleSample)
{
    Running_stats s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownMoments)
{
    Running_stats s;
    const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    s.add(xs);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1 = 7: sum of squared deviations is 32.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MatchesGaussianMoments)
{
    Prng prng(77);
    Running_stats s;
    for (int i = 0; i < 100'000; ++i) s.add(prng.next_gaussian(10.0, 3.0));
    EXPECT_NEAR(s.mean(), 10.0, 0.05);
    EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(RunningStats, Ci95ShrinksWithSamples)
{
    Prng prng(78);
    Running_stats small;
    Running_stats large;
    for (int i = 0; i < 100; ++i) small.add(prng.next_gaussian());
    for (int i = 0; i < 10'000; ++i) large.add(prng.next_gaussian());
    EXPECT_LT(large.ci95_halfwidth(), small.ci95_halfwidth());
}

TEST(RunningStats, ResetClears)
{
    Running_stats s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, CountsFallInCorrectBins)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(9.5);
    h.add(5.0);
    EXPECT_EQ(h.count_in_bin(0), 1u);
    EXPECT_EQ(h.count_in_bin(9), 1u);
    EXPECT_EQ(h.count_in_bin(5), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeCountsTowardTotalOnly)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(5.0);
    EXPECT_EQ(h.total(), 2u);
    for (std::size_t i = 0; i < h.bin_count(); ++i) EXPECT_EQ(h.count_in_bin(i), 0u);
}

TEST(Histogram, QuantileOfUniformData)
{
    Prng prng(79);
    Histogram h(0.0, 1.0, 100);
    for (int i = 0; i < 100'000; ++i) h.add(prng.next_double());
    EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
    EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(Histogram, InvalidConstruction)
{
    EXPECT_THROW(Histogram(1.0, 0.0, 4), Contract_violation);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), Contract_violation);
}

TEST(Histogram, BinCenter)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
    EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Median, OddAndEvenSizes)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
}

TEST(Median, EmptyThrows)
{
    EXPECT_THROW(median({}), Contract_violation);
}

} // namespace
