#include "util/thread_pool.hpp"

#include "util/contract.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace {

using inframe::util::Contract_violation;
using inframe::util::Parallel_scope;
using inframe::util::Thread_pool;

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    Thread_pool pool(4);
    constexpr std::int64_t n = 1003;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(0, n, 7, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)]++;
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkBoundariesDependOnGrainNotThreads)
{
    // The set of (begin, end) chunk pairs must be identical for every pool
    // size — that is the determinism contract.
    auto chunks_with = [](int threads) {
        Thread_pool pool(threads);
        std::mutex mutex;
        std::set<std::pair<std::int64_t, std::int64_t>> chunks;
        pool.parallel_for(5, 250, 16, [&](std::int64_t b, std::int64_t e) {
            const std::lock_guard<std::mutex> lock(mutex);
            chunks.emplace(b, e);
        });
        return chunks;
    };
    const auto serial = chunks_with(1);
    EXPECT_EQ(chunks_with(2), serial);
    EXPECT_EQ(chunks_with(4), serial);
    EXPECT_EQ(chunks_with(7), serial);
}

TEST(ThreadPool, EmptyRangeRunsNothing)
{
    Thread_pool pool(3);
    int calls = 0;
    pool.parallel_for(10, 10, 4, [&](std::int64_t, std::int64_t) { ++calls; });
    pool.parallel_for(10, 3, 4, [&](std::int64_t, std::int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, SerialPoolRunsInline)
{
    Thread_pool pool(1);
    EXPECT_EQ(pool.thread_count(), 1);
    std::vector<std::int64_t> order;
    pool.parallel_for(0, 40, 10, [&](std::int64_t b, std::int64_t) {
        order.push_back(b); // safe: no workers, runs on this thread
    });
    EXPECT_EQ(order, (std::vector<std::int64_t>{0, 10, 20, 30}));
}

TEST(ThreadPool, ExceptionsPropagateToCaller)
{
    Thread_pool pool(4);
    EXPECT_THROW(pool.parallel_for(0, 100, 1,
                                   [&](std::int64_t b, std::int64_t) {
                                       if (b == 37) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // The pool survives a failed job and runs the next one.
    std::atomic<int> sum{0};
    pool.parallel_for(0, 10, 1, [&](std::int64_t b, std::int64_t) { sum += static_cast<int>(b); });
    EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, NestedCallsFallBackToSerial)
{
    Thread_pool pool(4);
    std::atomic<int> inner_total{0};
    pool.parallel_for(0, 8, 1, [&](std::int64_t, std::int64_t) {
        // Nested: must run inline on this lane instead of deadlocking.
        pool.parallel_for(0, 4, 1,
                          [&](std::int64_t, std::int64_t) { ++inner_total; });
    });
    EXPECT_EQ(inner_total.load(), 8 * 4);
}

TEST(ThreadPool, ResolveThreads)
{
    EXPECT_EQ(inframe::util::resolve_threads(0), Thread_pool::hardware_threads());
    EXPECT_EQ(inframe::util::resolve_threads(1), 1);
    EXPECT_EQ(inframe::util::resolve_threads(5), 5);
    EXPECT_THROW(inframe::util::resolve_threads(-1), Contract_violation);
}

TEST(ThreadPool, ParallelScopeInstallsAndRestores)
{
    const int before = inframe::util::parallel_threads();
    {
        const Parallel_scope scope(3);
        EXPECT_EQ(inframe::util::parallel_threads(), 3);
        {
            const Parallel_scope inner(1);
            EXPECT_EQ(inframe::util::parallel_threads(), 1);
        }
        EXPECT_EQ(inframe::util::parallel_threads(), 3);
    }
    EXPECT_EQ(inframe::util::parallel_threads(), before);
}

TEST(ThreadPool, AmbientParallelForMatchesSerial)
{
    constexpr std::int64_t n = 517;
    auto run = [&](int threads) {
        const Parallel_scope scope(threads);
        std::vector<int> out(n, 0);
        inframe::util::parallel_for(0, n, 13, [&](std::int64_t b, std::int64_t e) {
            for (std::int64_t i = b; i < e; ++i) out[static_cast<std::size_t>(i)] = static_cast<int>(i * 3);
        });
        return out;
    };
    const auto serial = run(1);
    EXPECT_EQ(run(2), serial);
    EXPECT_EQ(run(4), serial);
    EXPECT_EQ(run(7), serial);
}

TEST(ThreadPool, ParallelReduceIsBitIdenticalAcrossThreadCounts)
{
    // Floating-point association must depend on the slice grain only: the
    // sums below differ when re-associated, so bit equality across thread
    // counts is a real test, not a triviality.
    constexpr std::int64_t n = 10'007;
    std::vector<double> values(n);
    double x = 0.1;
    for (auto& v : values) {
        v = x;
        x = x * 1.000137 + 0.00317; // spread magnitudes
    }
    auto sum_with = [&](int threads) {
        const Parallel_scope scope(threads);
        return inframe::util::parallel_reduce(
            0, n, 64, 0.0,
            [&](std::int64_t b, std::int64_t e) {
                double s = 0.0;
                for (std::int64_t i = b; i < e; ++i) s += values[static_cast<std::size_t>(i)];
                return s;
            },
            [](double acc, double partial) { return acc + partial; });
    };
    const double serial = sum_with(1);
    EXPECT_EQ(sum_with(2), serial); // bitwise, not NEAR
    EXPECT_EQ(sum_with(4), serial);
    EXPECT_EQ(sum_with(7), serial);
    const double plain = std::accumulate(values.begin(), values.end(), 0.0);
    EXPECT_NEAR(serial, plain, std::abs(plain) * 1e-9);
}

TEST(ThreadPool, ParallelReduceHandlesEmptyAndPartialSlices)
{
    const Parallel_scope scope(4);
    const double empty = inframe::util::parallel_reduce(
        3, 3, 8, -1.0, [](std::int64_t, std::int64_t) { return 100.0; },
        [](double a, double b) { return a + b; });
    EXPECT_EQ(empty, -1.0);

    // 10 indices with grain 4 -> slices [0,4) [4,8) [8,10).
    const double count = inframe::util::parallel_reduce(
        0, 10, 4, 0.0,
        [](std::int64_t b, std::int64_t e) { return static_cast<double>(e - b); },
        [](double a, double b) { return a + b; });
    EXPECT_EQ(count, 10.0);
}

} // namespace
