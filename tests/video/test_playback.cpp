#include "video/playback.hpp"

#include "util/contract.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe::video;
using inframe::util::Contract_violation;

TEST(PlaybackSchedule, PaperRigIsFourRepeats)
{
    Playback_schedule schedule; // 120 / 30
    EXPECT_EQ(schedule.repeats_per_video_frame(), 4);
}

TEST(PlaybackSchedule, MapsDisplayToVideoFrames)
{
    Playback_schedule schedule;
    EXPECT_EQ(schedule.video_frame_for_display(0), 0);
    EXPECT_EQ(schedule.video_frame_for_display(3), 0);
    EXPECT_EQ(schedule.video_frame_for_display(4), 1);
    EXPECT_EQ(schedule.video_frame_for_display(119), 29);
}

TEST(PlaybackSchedule, SixtyHzDisplay)
{
    Playback_schedule schedule{.display_fps = 60.0, .video_fps = 30.0};
    EXPECT_EQ(schedule.repeats_per_video_frame(), 2);
    EXPECT_EQ(schedule.video_frame_for_display(5), 2);
}

TEST(PlaybackSchedule, NonIntegerRatioRejected)
{
    // The encoder's complementary-pair cadence needs an integer repeat
    // count, so repeats_per_video_frame still refuses non-integer ratios
    // even though video_frame_for_display supports them.
    Playback_schedule schedule{.display_fps = 100.0, .video_fps = 30.0};
    EXPECT_THROW(schedule.repeats_per_video_frame(), Contract_violation);
}

TEST(PlaybackSchedule, NonIntegerRatioPulldownSequence)
{
    // 60 Hz display, 24 fps film: ratio 2.5, the 3:2-pulldown case. Each
    // video frame is shown floor-alternately 3 then 2 display frames.
    Playback_schedule schedule{.display_fps = 60.0, .video_fps = 24.0};
    const std::int64_t expected[] = {0, 0, 0, 1, 1, 2, 2, 2, 3, 3, 4};
    for (std::int64_t j = 0; j < 11; ++j) {
        EXPECT_EQ(schedule.video_frame_for_display(j), expected[j]) << "display " << j;
    }
}

TEST(PlaybackSchedule, NtscFilmRateMapsMonotonically)
{
    // 120 Hz display over 23.976 fps (24000/1001 NTSC film): the mapping
    // must be monotone non-decreasing, advance by at most one video frame
    // per display frame, and land on the right frame at whole seconds.
    Playback_schedule schedule{.display_fps = 120.0, .video_fps = 24000.0 / 1001.0};
    std::int64_t previous = 0;
    for (std::int64_t j = 0; j < 1200; ++j) {
        const auto frame = schedule.video_frame_for_display(j);
        EXPECT_GE(frame, previous) << "display " << j;
        EXPECT_LE(frame - previous, 1) << "display " << j;
        previous = frame;
    }
    // After 10 seconds of display time: 10 * 23.976... = 239.76 -> frame 239.
    EXPECT_EQ(schedule.video_frame_for_display(1199), 239);
    EXPECT_THROW(schedule.repeats_per_video_frame(), Contract_violation);
}

TEST(PlaybackSchedule, IntegerRatioUnaffectedByFloatPath)
{
    // Integer ratios keep using the exact integer-division path: spot-check
    // a late frame where accumulated floating-point error would show.
    Playback_schedule schedule{.display_fps = 120.0, .video_fps = 30.0};
    EXPECT_EQ(schedule.video_frame_for_display(3'000'000'000LL), 750'000'000LL);
}

TEST(PlaybackSchedule, DisplayTime)
{
    Playback_schedule schedule;
    EXPECT_DOUBLE_EQ(schedule.display_time(0), 0.0);
    EXPECT_DOUBLE_EQ(schedule.display_time(120), 1.0);
    EXPECT_THROW(schedule.display_time(-1), Contract_violation);
}

TEST(StandardVideos, PaperLevels)
{
    const auto gray = make_gray_video(32, 18);
    const auto dark = make_dark_gray_video(32, 18);
    EXPECT_EQ(gray->frame(0)(0, 0), 180.0f);
    EXPECT_EQ(dark->frame(0)(0, 0), 127.0f);
    EXPECT_DOUBLE_EQ(gray->fps(), 30.0);
}

TEST(StandardVideos, SunriseIsCachedAndSized)
{
    const auto sunrise = make_sunrise_video(64, 36);
    EXPECT_EQ(sunrise->width(), 64);
    EXPECT_EQ(sunrise->height(), 36);
    EXPECT_EQ(sunrise->name(), "sunrise");
}

} // namespace
