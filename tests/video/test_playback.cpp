#include "video/playback.hpp"

#include "util/contract.hpp"

#include <gtest/gtest.h>

namespace {

using namespace inframe::video;
using inframe::util::Contract_violation;

TEST(PlaybackSchedule, PaperRigIsFourRepeats)
{
    Playback_schedule schedule; // 120 / 30
    EXPECT_EQ(schedule.repeats_per_video_frame(), 4);
}

TEST(PlaybackSchedule, MapsDisplayToVideoFrames)
{
    Playback_schedule schedule;
    EXPECT_EQ(schedule.video_frame_for_display(0), 0);
    EXPECT_EQ(schedule.video_frame_for_display(3), 0);
    EXPECT_EQ(schedule.video_frame_for_display(4), 1);
    EXPECT_EQ(schedule.video_frame_for_display(119), 29);
}

TEST(PlaybackSchedule, SixtyHzDisplay)
{
    Playback_schedule schedule{.display_fps = 60.0, .video_fps = 30.0};
    EXPECT_EQ(schedule.repeats_per_video_frame(), 2);
    EXPECT_EQ(schedule.video_frame_for_display(5), 2);
}

TEST(PlaybackSchedule, NonIntegerRatioRejected)
{
    Playback_schedule schedule{.display_fps = 100.0, .video_fps = 30.0};
    EXPECT_THROW(schedule.repeats_per_video_frame(), Contract_violation);
}

TEST(PlaybackSchedule, DisplayTime)
{
    Playback_schedule schedule;
    EXPECT_DOUBLE_EQ(schedule.display_time(0), 0.0);
    EXPECT_DOUBLE_EQ(schedule.display_time(120), 1.0);
    EXPECT_THROW(schedule.display_time(-1), Contract_violation);
}

TEST(StandardVideos, PaperLevels)
{
    const auto gray = make_gray_video(32, 18);
    const auto dark = make_dark_gray_video(32, 18);
    EXPECT_EQ(gray->frame(0)(0, 0), 180.0f);
    EXPECT_EQ(dark->frame(0)(0, 0), 127.0f);
    EXPECT_DOUBLE_EQ(gray->fps(), 30.0);
}

TEST(StandardVideos, SunriseIsCachedAndSized)
{
    const auto sunrise = make_sunrise_video(64, 36);
    EXPECT_EQ(sunrise->width(), 64);
    EXPECT_EQ(sunrise->height(), 36);
    EXPECT_EQ(sunrise->name(), "sunrise");
}

} // namespace
