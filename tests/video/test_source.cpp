#include "video/source.hpp"

#include "imgproc/image_ops.hpp"
#include "imgproc/io.hpp"
#include "imgproc/metrics.hpp"
#include "util/contract.hpp"
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace {

using namespace inframe::video;
using inframe::img::Imagef;
using inframe::util::Contract_violation;

TEST(SolidVideo, UniformLevel)
{
    Solid_video v(32, 24, 180.0f);
    const Imagef frame = v.frame(0);
    EXPECT_EQ(frame.width(), 32);
    EXPECT_EQ(frame.height(), 24);
    for (const float px : frame.values()) EXPECT_EQ(px, 180.0f);
}

TEST(SolidVideo, NameEncodesLevel)
{
    Solid_video v(8, 8, 127.0f);
    EXPECT_EQ(v.name(), "solid-127");
}

TEST(SolidVideo, Validation)
{
    EXPECT_THROW(Solid_video(0, 8, 1.0f), Contract_violation);
    EXPECT_THROW(Solid_video(8, 8, 1.0f, 0.0), Contract_violation);
    Solid_video v(8, 8, 1.0f);
    EXPECT_THROW(v.frame(-1), Contract_violation);
}

TEST(StillVideo, RepeatsTheImage)
{
    Imagef image(8, 8, 1, 33.0f);
    Still_video v(std::move(image), "card");
    const Imagef f0 = v.frame(0);
    const Imagef f100 = v.frame(100);
    EXPECT_DOUBLE_EQ(inframe::img::mae(f0, f100), 0.0);
    EXPECT_EQ(v.name(), "card");
}

TEST(SunriseVideo, DeterministicPerIndex)
{
    Sunrise_video v(64, 48, 30.0, 5);
    const Imagef a = v.frame(10);
    const Imagef b = v.frame(10);
    EXPECT_DOUBLE_EQ(inframe::img::mae(a, b), 0.0);
}

TEST(SunriseVideo, FramesEvolveOverTime)
{
    Sunrise_video v(64, 48, 30.0, 5);
    const Imagef early = v.frame(0);
    const Imagef late = v.frame(600); // 20 seconds in
    EXPECT_GT(inframe::img::mae(early, late), 5.0);
}

TEST(SunriseVideo, BrightensAsTheSunRises)
{
    Sunrise_video v(64, 48, 30.0, 5);
    const double early = inframe::img::mean(v.frame(0));
    const double late = inframe::img::mean(v.frame(900));
    EXPECT_GT(late, early + 20.0);
}

TEST(SunriseVideo, CoversWideLuminanceRange)
{
    Sunrise_video v(96, 54, 30.0, 5);
    const auto [lo, hi] = inframe::img::min_max(v.frame(450));
    EXPECT_LT(lo, 60.0f);  // dark foreground
    EXPECT_GT(hi, 200.0f); // sun
}

TEST(SunriseVideo, HasTexturedForeground)
{
    Sunrise_video v(96, 54, 30.0, 5);
    const Imagef frame = v.frame(300);
    // Foreground occupies the bottom ~38%; texture -> local variance.
    const int y0 = static_cast<int>(0.7 * frame.height());
    double dev = 0.0;
    int count = 0;
    const double m = inframe::img::mean_region(frame, 0, y0, frame.width(), frame.height() - y0);
    for (int y = y0; y < frame.height(); ++y) {
        for (int x = 0; x < frame.width(); ++x) {
            dev += std::abs(frame(x, y) - m);
            ++count;
        }
    }
    EXPECT_GT(dev / count, 3.0);
}

TEST(SunriseVideo, SeedChangesScene)
{
    Sunrise_video a(64, 48, 30.0, 5);
    Sunrise_video b(64, 48, 30.0, 6);
    EXPECT_GT(inframe::img::mae(a.frame(100), b.frame(100)), 0.5);
}

TEST(MovingBars, BarsMoveAtConfiguredSpeed)
{
    Moving_bars_video v(64, 8, 8, 2.0f);
    const Imagef f0 = v.frame(0);
    const Imagef f4 = v.frame(4); // bars shifted by 8 px = one bar width
    for (int x = 0; x < 56; ++x) {
        EXPECT_EQ(f4(x, 0), f0(x + 8, 0));
    }
}

TEST(MovingBars, TwoLevelsOnly)
{
    Moving_bars_video v(32, 8, 4, 1.0f, 30.0, 10.0f, 20.0f);
    const Imagef f = v.frame(3);
    for (const float px : f.values()) EXPECT_TRUE(px == 10.0f || px == 20.0f);
}

TEST(NoiseVideo, MatchesRequestedMoments)
{
    Noise_video v(128, 128, 128.0f, 10.0f);
    const Imagef f = v.frame(0);
    inframe::util::Running_stats stats;
    for (const float px : f.values()) stats.add(px);
    EXPECT_NEAR(stats.mean(), 128.0, 1.0);
    EXPECT_NEAR(stats.stddev(), 10.0, 1.0);
}

TEST(NoiseVideo, FramesAreIndependentButReproducible)
{
    Noise_video v(32, 32, 128.0f, 10.0f, 30.0, 77);
    EXPECT_GT(inframe::img::mae(v.frame(0), v.frame(1)), 5.0);
    Noise_video w(32, 32, 128.0f, 10.0f, 30.0, 77);
    EXPECT_DOUBLE_EQ(inframe::img::mae(v.frame(3), w.frame(3)), 0.0);
}

TEST(CachedVideo, ReturnsSameFrames)
{
    auto inner = std::make_shared<Sunrise_video>(48, 32, 30.0, 5);
    Cached_video cached(inner);
    EXPECT_DOUBLE_EQ(inframe::img::mae(cached.frame(7), inner->frame(7)), 0.0);
    // Second request hits the cache and must be identical.
    EXPECT_DOUBLE_EQ(inframe::img::mae(cached.frame(7), inner->frame(7)), 0.0);
    EXPECT_EQ(cached.width(), 48);
    EXPECT_EQ(cached.name(), "sunrise");
}

TEST(CachedVideo, Validation)
{
    EXPECT_THROW(Cached_video(nullptr), Contract_violation);
    auto inner = std::make_shared<Solid_video>(8, 8, 1.0f);
    EXPECT_THROW(Cached_video(inner, 0), Contract_violation);
}

TEST(SlideshowVideo, CutsHappenExactlyAtHoldBoundaries)
{
    Slideshow_video v(96, 54, 30);
    // Within a slide: identical frames.
    EXPECT_DOUBLE_EQ(inframe::img::mae(v.frame(0), v.frame(29)), 0.0);
    // Across the cut: a different composition.
    EXPECT_GT(inframe::img::mae(v.frame(29), v.frame(30)), 5.0);
}

TEST(SlideshowVideo, DeterministicPerSeed)
{
    Slideshow_video a(96, 54, 30, 30.0, 7);
    Slideshow_video b(96, 54, 30, 30.0, 7);
    Slideshow_video c(96, 54, 30, 30.0, 8);
    EXPECT_DOUBLE_EQ(inframe::img::mae(a.frame(45), b.frame(45)), 0.0);
    EXPECT_GT(inframe::img::mae(a.frame(45), c.frame(45)), 1.0);
}

TEST(SlideshowVideo, Validation)
{
    EXPECT_THROW(Slideshow_video(96, 54, 0), Contract_violation);
}

TEST(TickerVideo, TextScrollsLeft)
{
    Ticker_video v(192, 54, "GOAL 2-1", 2.0f);
    // Frame 0 starts with the text just off the right edge; compare two
    // frames where the whole string is on screen.
    const Imagef f0 = v.frame(50);
    const Imagef f10 = v.frame(60); // 20 px later
    // Ink must exist and move: frames differ, backgrounds dominate.
    EXPECT_GT(inframe::img::mae(f0, f10), 0.01);
    int ink0 = 0;
    for (const float px : f0.values()) ink0 += px > 200.0f;
    int ink10 = 0;
    for (const float px : f10.values()) ink10 += px > 200.0f;
    EXPECT_GT(ink10, 0);
    // The glyph area is roughly conserved while fully on-screen.
    EXPECT_NEAR(ink0, ink10, ink0 / 2 + 8);
}

TEST(TickerVideo, WrapsAround)
{
    Ticker_video v(96, 54, "NEWS", 4.0f);
    // One full cycle: 96 + 4 glyphs * 12 px = 144 px -> 36 frames.
    const Imagef f0 = v.frame(0);
    const Imagef f_cycle = v.frame(36);
    EXPECT_LT(inframe::img::mae(f0, f_cycle), 0.5);
}

TEST(TickerVideo, Validation)
{
    EXPECT_THROW(Ticker_video(96, 54, "", 1.0f), Contract_violation);
}

TEST(ImageSequenceVideo, LoadsAndLoopsRecordedFrames)
{
    namespace fs = std::filesystem;
    const auto dir = fs::temp_directory_path() / "inframe_seq_test";
    fs::create_directories(dir);
    std::vector<std::string> paths;
    for (int i = 0; i < 3; ++i) {
        Imagef frame(24, 16, 1, static_cast<float>(40 * (i + 1)));
        const auto path = (dir / ("frame_" + std::to_string(i) + ".pgm")).string();
        inframe::img::write_pnm(frame, path);
        paths.push_back(path);
    }
    Image_sequence_video v(paths, 24.0);
    EXPECT_EQ(v.frame_count(), 3u);
    EXPECT_EQ(v.width(), 24);
    EXPECT_DOUBLE_EQ(v.fps(), 24.0);
    EXPECT_NEAR(v.frame(1)(0, 0), 80.0f, 0.5f);
    // Loops past the end.
    EXPECT_NEAR(v.frame(4)(0, 0), 80.0f, 0.5f);
    for (const auto& p : paths) fs::remove(p);
}

TEST(ImageSequenceVideo, RejectsMismatchedShapes)
{
    namespace fs = std::filesystem;
    const auto dir = fs::temp_directory_path() / "inframe_seq_test";
    fs::create_directories(dir);
    const auto a = (dir / "a.pgm").string();
    const auto b = (dir / "b.pgm").string();
    inframe::img::write_pnm(Imagef(24, 16, 1, 10.0f), a);
    inframe::img::write_pnm(Imagef(20, 16, 1, 10.0f), b);
    EXPECT_THROW(Image_sequence_video({a, b}), Contract_violation);
    fs::remove(a);
    fs::remove(b);
}

TEST(ImageSequenceVideo, Validation)
{
    EXPECT_THROW(Image_sequence_video({}), Contract_violation);
}

TEST(ValueNoise, DeterministicAndBounded)
{
    for (int i = 0; i < 50; ++i) {
        const double x = i * 0.37;
        const double y = i * 0.91;
        const double v = value_noise(x, y, 3);
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
        EXPECT_DOUBLE_EQ(v, value_noise(x, y, 3));
    }
}

TEST(ValueNoise, ContinuousAcrossLatticeCells)
{
    // Values just either side of a lattice line should be close.
    const double a = value_noise(2.999, 5.5, 11);
    const double b = value_noise(3.001, 5.5, 11);
    EXPECT_NEAR(a, b, 0.02);
}

TEST(FractalNoise, BoundedAndOctaveValidation)
{
    EXPECT_THROW(fractal_noise(0.0, 0.0, 1, 0), Contract_violation);
    for (int i = 0; i < 20; ++i) {
        const double v = fractal_noise(i * 0.31, i * 0.17, 1, 4);
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
}

} // namespace
